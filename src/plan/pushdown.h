// Algorithm 1 of the paper: bitvector filter creation and push-down.
//
// Every hash join creates one bitvector filter from its build side, keyed on
// the equi-join columns. The filter is pushed down the probe subtree to the
// lowest operator whose output still contains all of the filter's probe-side
// columns; if the columns split across an operator's children the filter is
// applied on top of that operator ("residual"). Filters may descend into the
// build side of lower joins (Figure 1: the filter from HJ2's build C crosses
// HJ3 into leaf B).
#pragma once

#include "src/plan/plan.h"

namespace bqo {

/// \brief Annotate `plan` with bitvector filters per Algorithm 1.
///
/// Clears any previous annotation. After the call, plan->filters describes
/// every filter (source join, key columns, application site) and each node's
/// applied_filters/created_filter fields are consistent with it.
void PushDownBitvectors(Plan* plan);

/// \brief Remove all bitvector-filter annotations from `plan` (used to cost
/// or execute the same join order without filters, as in Table 4).
void ClearBitvectors(Plan* plan);

/// \brief The set of relations referenced by a filter's probe columns.
RelSet FilterProbeRels(const PlanFilter& filter);

}  // namespace bqo

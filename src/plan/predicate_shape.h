// Predicate shape: the split of a predicate into structure and constants.
//
// Serving workloads are template-heavy — the same query arrives again and
// again with different literals. To cache optimized plans across such a
// template (src/server/plan_cache.h), a predicate is viewed as two parts:
//
//  * its **shape** — column names, comparison kinds, boolean structure,
//    and the structural scalars that define the predicate family (an IN
//    list's length, a modulo predicate's divisor), with every bound
//    constant replaced by a typed slot marker `?i` / `?d` / `?s`;
//  * its **constant slot table** — the bound constants in a canonical
//    pre-order walk, so two predicates with equal shapes differ only in
//    this table and either one can be rebuilt from the other's structure
//    plus its own constants (RebindPredicateConstants).
//
// Which fields are slots: kCompare's literal, kBetween's lo/hi, every
// kInList element, kStringContains' needle, kModLess' bound. Which are
// structure: columns, operators, the IN list length, the modulo divisor
// (it names the hash family, not a tuning constant), and kTrue. The slot
// type is part of the shape (`?i` vs `?s`), so a template whose literal
// changes type does not collide with its int-typed sibling.
#pragma once

#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace bqo {

/// \brief Canonical shape string of `expr` (constants as typed `?` slots).
/// Null predicates render as "TRUE" — the zero-slot degenerate case.
std::string PredicateShape(const ExprPtr& expr);

/// \brief The bound constants of `expr` in shape walk order (empty for
/// null/kTrue — exact-match caching falls out as this degenerate case).
std::vector<Value> CollectPredicateConstants(const ExprPtr& expr);

/// \brief Rebuild `structure`'s predicate with `constants` bound into its
/// slots (same walk order as CollectPredicateConstants). Dies if the
/// constant count does not match the structure's slot count — callers
/// compare shapes first. Rebinding a predicate with its own constants
/// reproduces an equivalent predicate.
ExprPtr RebindPredicateConstants(const ExprPtr& structure,
                                 const std::vector<Value>& constants);

}  // namespace bqo

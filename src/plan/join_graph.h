// Join graph: the logical input to join-order optimization.
//
// A query is a set of relations (base tables with optional local predicates,
// identified by alias so the same table may appear several times, as in JOB)
// connected by equi-join edges. Edges carry uniqueness metadata: an edge
// where the join columns form a key of the right side is the paper's
// "R_left -> R_right" (a PKFK join when the key is a primary key,
// Definition 1).
//
// Relations are indexed 0..n-1; subsets are uint64_t bitmasks (queries are
// capped at 64 relations; the CUSTOMER-like generator stays below this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/storage/catalog.h"

namespace bqo {

/// \brief Set of relation indices as a bitmask.
using RelSet = uint64_t;

inline RelSet RelBit(int rel) { return RelSet{1} << rel; }
inline bool RelSetContains(RelSet set, int rel) {
  return (set & RelBit(rel)) != 0;
}
inline int RelSetCount(RelSet set) { return __builtin_popcountll(set); }

/// \brief A relation occurrence in a query.
struct RelationRef {
  std::string alias;       ///< unique within the query
  std::string table_name;  ///< base table in the catalog
  const Table* table = nullptr;
  ExprPtr predicate;       ///< local filter; null/kTrue selects all rows

  // Filled by the statistics layer (AttachStatistics):
  double base_rows = 0;      ///< |table|
  double filtered_rows = 0;  ///< |sigma_predicate(table)|
};

/// \brief An equi-join edge between two relations. `left_cols[i]` joins
/// `right_cols[i]`. `right_unique` means the join columns form a unique key
/// of the right side, i.e. left -> right in the paper's notation.
struct JoinEdge {
  int left = -1;
  int right = -1;
  std::vector<std::string> left_cols;
  std::vector<std::string> right_cols;
  bool left_unique = false;
  bool right_unique = false;

  /// \brief The other endpoint of this edge.
  int Other(int rel) const { return rel == left ? right : left; }
  bool Touches(int rel) const { return left == rel || right == rel; }
};

/// \brief The join graph of one query.
class JoinGraph {
 public:
  /// \brief Add a relation; returns its index. `table` may be null for
  /// purely analytical graphs (Cout analysis with synthetic cardinalities).
  int AddRelation(std::string alias, std::string table_name,
                  const Table* table, ExprPtr predicate);

  /// \brief Add an equi-join edge; uniqueness flags may be set directly or
  /// derived from a catalog via DeriveUniqueness().
  int AddEdge(JoinEdge edge);

  /// \brief Set left_unique/right_unique on every edge from catalog key
  /// metadata (a side is unique if any of its join columns is a declared
  /// unique key of its base table).
  void DeriveUniqueness(const Catalog& catalog);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const RelationRef& relation(int idx) const {
    return relations_[static_cast<size_t>(idx)];
  }
  RelationRef& relation(int idx) { return relations_[static_cast<size_t>(idx)]; }
  const JoinEdge& edge(int idx) const { return edges_[static_cast<size_t>(idx)]; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// \brief Edge ids incident to `rel`.
  const std::vector<int>& IncidentEdges(int rel) const {
    return incident_[static_cast<size_t>(rel)];
  }

  /// \brief Edge ids with exactly one endpoint in `set` and the other being
  /// `rel` (the edges a join of `set` with `rel` would apply).
  std::vector<int> EdgesBetween(RelSet set, int rel) const;

  /// \brief Edge ids with one endpoint in `a` and the other in `b`.
  std::vector<int> EdgesBetweenSets(RelSet a, RelSet b) const;

  /// \brief Relations adjacent to any member of `set`, excluding `set`.
  RelSet Neighbors(RelSet set) const;

  /// \brief True if the relations in `set` form a connected subgraph.
  bool IsConnected(RelSet set) const;

  /// \brief Bitmask of all relations.
  RelSet AllRels() const {
    return num_relations() == 64 ? ~RelSet{0}
                                 : (RelSet{1} << num_relations()) - 1;
  }

  /// \brief Index of the relation with this alias, or -1.
  int FindRelation(std::string_view alias) const;

  /// \brief Canonical *shape* signature: relations in index order as
  /// `table|predicate-shape` (literal constants replaced by typed `?`
  /// slots, src/plan/predicate_shape.h) plus every edge's endpoints,
  /// column lists, and uniqueness flags. Two queries that differ only in
  /// bound constants — or in aliases, which are naming, not semantics —
  /// share a shape signature; the serving layer's plan cache keys on it.
  std::string ShapeSignature() const;

  /// \brief Per-relation bound-constant slot tables, index-aligned with
  /// the relations (CollectPredicateConstants of each local predicate).
  /// Together with ShapeSignature this is a lossless split of the query's
  /// predicates into structure and constants.
  std::vector<std::vector<Value>> ConstantTable() const;

  std::string ToString() const;

 private:
  std::vector<RelationRef> relations_;
  std::vector<JoinEdge> edges_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace bqo

#include "src/plan/pushdown.h"

#include <algorithm>

namespace bqo {

namespace {

/// Build the filter descriptor for a hash join node: key columns are the
/// equi-join columns of every edge applied at the join, build side first.
PlanFilter MakeFilterFor(const Plan& plan, const PlanNode& join) {
  const JoinGraph& graph = *plan.graph;
  PlanFilter f;
  f.source_join = join.id;
  // Deterministic column order: by edge id, then declared column order.
  std::vector<int> edge_ids = join.edge_ids;
  std::sort(edge_ids.begin(), edge_ids.end());
  for (int eid : edge_ids) {
    const JoinEdge& e = graph.edge(eid);
    const bool left_in_build = RelSetContains(join.build->rel_set, e.left);
    for (size_t i = 0; i < e.left_cols.size(); ++i) {
      BoundColumn l{e.left, e.left_cols[i]};
      BoundColumn r{e.right, e.right_cols[i]};
      if (left_in_build) {
        f.build_cols.push_back(l);
        f.probe_cols.push_back(r);
      } else {
        f.build_cols.push_back(r);
        f.probe_cols.push_back(l);
      }
    }
  }
  return f;
}

void PushDownRec(Plan* plan, PlanNode* node, std::vector<int> incoming) {
  if (node->kind == PlanNode::Kind::kLeaf) {
    for (int fid : incoming) {
      plan->filters[static_cast<size_t>(fid)].applied_at = node->id;
      node->applied_filters.push_back(fid);
    }
    return;
  }

  // A hash join creates a filter from its build side and pushes it down
  // the probe side (Algorithm 1 lines 8-10).
  PlanFilter created = MakeFilterFor(*plan, *node);
  created.id = static_cast<int>(plan->filters.size());
  node->created_filter = created.id;
  plan->filters.push_back(std::move(created));

  std::vector<int> to_build, to_probe;
  to_probe.push_back(node->created_filter);

  // Route incoming filters (lines 12-23): a filter descends into the unique
  // child whose output contains all of its probe columns; otherwise it is
  // residual and applied on top of this join.
  for (int fid : incoming) {
    const RelSet need = FilterProbeRels(plan->filters[static_cast<size_t>(fid)]);
    if ((need & ~node->build->rel_set) == 0) {
      to_build.push_back(fid);
    } else if ((need & ~node->probe->rel_set) == 0) {
      to_probe.push_back(fid);
    } else {
      plan->filters[static_cast<size_t>(fid)].applied_at = node->id;
      node->applied_filters.push_back(fid);
    }
  }

  PushDownRec(plan, node->build.get(), std::move(to_build));
  PushDownRec(plan, node->probe.get(), std::move(to_probe));
}

}  // namespace

RelSet FilterProbeRels(const PlanFilter& filter) {
  RelSet set = 0;
  for (const BoundColumn& c : filter.probe_cols) set |= RelBit(c.rel);
  return set;
}

void ClearBitvectors(Plan* plan) {
  plan->filters.clear();
  for (PlanNode* node : plan->nodes) {
    node->applied_filters.clear();
    node->created_filter = -1;
  }
}

void PushDownBitvectors(Plan* plan) {
  BQO_CHECK(plan != nullptr && plan->root != nullptr);
  plan->Renumber();
  ClearBitvectors(plan);
  PushDownRec(plan, plan->root.get(), {});
}

}  // namespace bqo

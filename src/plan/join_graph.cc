#include "src/plan/join_graph.h"

#include "src/common/string_util.h"
#include "src/plan/predicate_shape.h"

namespace bqo {

int JoinGraph::AddRelation(std::string alias, std::string table_name,
                           const Table* table, ExprPtr predicate) {
  BQO_CHECK_MSG(num_relations() < 64, "queries are capped at 64 relations");
  BQO_CHECK_MSG(FindRelation(alias) < 0, "duplicate relation alias");
  RelationRef ref;
  ref.alias = std::move(alias);
  ref.table_name = std::move(table_name);
  ref.table = table;
  ref.predicate = std::move(predicate);
  if (table != nullptr) {
    ref.base_rows = static_cast<double>(table->num_rows());
    ref.filtered_rows = ref.base_rows;  // refined by AttachStatistics
  }
  relations_.push_back(std::move(ref));
  incident_.emplace_back();
  return num_relations() - 1;
}

int JoinGraph::AddEdge(JoinEdge edge) {
  BQO_CHECK(edge.left >= 0 && edge.left < num_relations());
  BQO_CHECK(edge.right >= 0 && edge.right < num_relations());
  BQO_CHECK_NE(edge.left, edge.right);
  BQO_CHECK(!edge.left_cols.empty());
  BQO_CHECK_EQ(edge.left_cols.size(), edge.right_cols.size());
  const int id = num_edges();
  incident_[static_cast<size_t>(edge.left)].push_back(id);
  incident_[static_cast<size_t>(edge.right)].push_back(id);
  edges_.push_back(std::move(edge));
  return id;
}

void JoinGraph::DeriveUniqueness(const Catalog& catalog) {
  for (auto& e : edges_) {
    const RelationRef& lr = relation(e.left);
    const RelationRef& rr = relation(e.right);
    e.left_unique = false;
    e.right_unique = false;
    for (const auto& col : e.left_cols) {
      if (catalog.IsUniqueKey(lr.table_name, col)) e.left_unique = true;
    }
    for (const auto& col : e.right_cols) {
      if (catalog.IsUniqueKey(rr.table_name, col)) e.right_unique = true;
    }
  }
}

std::vector<int> JoinGraph::EdgesBetween(RelSet set, int rel) const {
  std::vector<int> out;
  for (int eid : incident_[static_cast<size_t>(rel)]) {
    const JoinEdge& e = edges_[static_cast<size_t>(eid)];
    const int other = e.Other(rel);
    if (RelSetContains(set, other)) out.push_back(eid);
  }
  return out;
}

std::vector<int> JoinGraph::EdgesBetweenSets(RelSet a, RelSet b) const {
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i) {
    const JoinEdge& e = edges_[static_cast<size_t>(i)];
    const bool la = RelSetContains(a, e.left);
    const bool ra = RelSetContains(a, e.right);
    const bool lb = RelSetContains(b, e.left);
    const bool rb = RelSetContains(b, e.right);
    if ((la && rb) || (ra && lb)) out.push_back(i);
  }
  return out;
}

RelSet JoinGraph::Neighbors(RelSet set) const {
  RelSet out = 0;
  for (int r = 0; r < num_relations(); ++r) {
    if (!RelSetContains(set, r)) continue;
    for (int eid : incident_[static_cast<size_t>(r)]) {
      out |= RelBit(edges_[static_cast<size_t>(eid)].Other(r));
    }
  }
  return out & ~set;
}

bool JoinGraph::IsConnected(RelSet set) const {
  if (set == 0) return false;
  const int first = __builtin_ctzll(set);
  RelSet reached = RelBit(first);
  RelSet frontier = reached;
  while (frontier != 0) {
    const RelSet next = (Neighbors(reached) & set);
    if (next == 0) break;
    reached |= next;
    frontier = next;
  }
  return reached == set;
}

std::string JoinGraph::ShapeSignature() const {
  std::string sig;
  // Relations in index order: base table + predicate shape (aliases are
  // naming, not semantics — excluded so alias-renamed queries collide).
  for (int r = 0; r < num_relations(); ++r) {
    const RelationRef& rel = relation(r);
    sig += StringFormat(";R%d=%s|", r, rel.table_name.c_str());
    sig += PredicateShape(rel.predicate);
  }
  // Edges: endpoints, column lists, and the uniqueness flags Definition 1
  // keys on. BuildJoinGraph emits edges in a deterministic order for a
  // given spec, so equal queries produce equal signatures.
  for (int e = 0; e < num_edges(); ++e) {
    const JoinEdge& edge = this->edge(e);
    sig += StringFormat(";E%d=%d<%d:", e, edge.left, edge.right);
    sig += JoinStrings(edge.left_cols, ",");
    sig += "=";
    sig += JoinStrings(edge.right_cols, ",");
    sig += StringFormat(":%d%d", edge.left_unique ? 1 : 0,
                        edge.right_unique ? 1 : 0);
  }
  return sig;
}

std::vector<std::vector<Value>> JoinGraph::ConstantTable() const {
  std::vector<std::vector<Value>> table;
  table.reserve(relations_.size());
  for (const RelationRef& rel : relations_) {
    table.push_back(CollectPredicateConstants(rel.predicate));
  }
  return table;
}

int JoinGraph::FindRelation(std::string_view alias) const {
  for (int i = 0; i < num_relations(); ++i) {
    if (relations_[static_cast<size_t>(i)].alias == alias) return i;
  }
  return -1;
}

std::string JoinGraph::ToString() const {
  std::string out = "JoinGraph{\n";
  for (int i = 0; i < num_relations(); ++i) {
    const RelationRef& r = relation(i);
    out += StringFormat("  [%d] %s (%s), |R|=%.0f, |sigma(R)|=%.0f", i,
                        r.alias.c_str(), r.table_name.c_str(), r.base_rows,
                        r.filtered_rows);
    if (r.predicate != nullptr) out += "  WHERE " + r.predicate->ToString();
    out += "\n";
  }
  for (const auto& e : edges_) {
    out += StringFormat(
        "  %s.%s %s=%s %s.%s\n", relation(e.left).alias.c_str(),
        JoinStrings(e.left_cols, ",").c_str(), e.left_unique ? "<K" : "",
        e.right_unique ? "K>" : "", relation(e.right).alias.c_str(),
        JoinStrings(e.right_cols, ",").c_str());
  }
  out += "}";
  return out;
}

}  // namespace bqo
